#!/usr/bin/env python3
"""Validates an XK_TRACE Chrome trace-event JSON file.

Checks, in order:
  * the file is well-formed JSON in object format with a "traceEvents"
    array (the format chrome://tracing and Perfetto load);
  * every event has a known phase ("X" complete, "i" instant, "M"
    metadata), numeric ts, and (for "X") a non-negative dur;
  * per (pid, tid), "X" spans nest properly: sorted by (ts, -dur), each
    span either contains or is disjoint from every other — a span that
    straddles an enclosing span's end means the writer emitted garbage
    timestamps (a small --epsilon in microseconds absorbs clock
    granularity at span edges);
  * per (pid, tid), record timestamps — ts for instants, ts + dur for
    spans, which are recorded at completion — are monotonically
    non-decreasing in drain order (owner-written rings drain oldest-first,
    so any inversion means the drain or the re-basing epoch is wrong);
  * --require-cats: each named category appears at least once among the
    events (CI passes task,steal,ready for the micro_steal smoke — park
    is real but not guaranteed at tiny sizes);
  * the optional top-level "metrics" array: each entry names a pid and
    carries a "snapshot" object with "nworkers", "counters" (a
    name->integer object), and "domains" (list of rank/ready/failed/
    occupied gauges) — the machine-readable side of the drain.

Exit codes: 0 ok, 1 validation failure, 2 missing/unreadable input.

Examples:
  scripts/check_trace.py trace.json
  scripts/check_trace.py trace.json --require-cats task,steal,ready \
      --require-metrics
"""

import argparse
import json
import sys

KNOWN_PHASES = {"X", "i", "M"}


def fail(msg):
    print(f"error: {msg}", file=sys.stderr)
    return 1


def check_events(events, epsilon):
    """Phase/field sanity plus per-(pid,tid) ordering and span nesting."""
    cats = set()
    lanes = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return None, fail(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            return None, fail(f"traceEvents[{i}]: unknown phase {ph!r}")
        if ph == "M":
            continue  # metadata carries no timestamp worth checking
        for field in ("ts", "pid", "tid", "name"):
            if field not in ev:
                return None, fail(f"traceEvents[{i}] lacks {field!r}")
        if not isinstance(ev["ts"], (int, float)):
            return None, fail(f"traceEvents[{i}]: non-numeric ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return None, fail(
                    f"traceEvents[{i}] ({ev['name']}): bad dur {dur!r}")
        if "cat" in ev:
            cats.add(ev["cat"])
        lanes.setdefault((ev["pid"], ev["tid"]), []).append(ev)

    for (pid, tid), lane in lanes.items():
        prev_ts = None
        for ev in lane:  # writer order == drain order == oldest first
            # Spans are recorded when they *close*, so the ring-order
            # invariant is on completion time, not start time (a parent
            # span starts before but ends after its children).
            rec = ev["ts"] + ev.get("dur", 0)
            if prev_ts is not None and rec + epsilon < prev_ts:
                return None, fail(
                    f"pid {pid} tid {tid}: record-time inversion at "
                    f"{ev['name']!r} ({rec} after {prev_ts})")
            prev_ts = rec
        # Span containment: with spans sorted by (start, -dur), a stack of
        # currently-open spans must always enclose the next span entirely.
        spans = sorted((e for e in lane if e["ph"] == "X"),
                       key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in spans:
            t0, t1 = ev["ts"], ev["ts"] + ev["dur"]
            while stack and t0 >= stack[-1][1] - epsilon:
                stack.pop()
            if stack and t1 > stack[-1][1] + epsilon:
                return None, fail(
                    f"pid {pid} tid {tid}: span {ev['name']!r} "
                    f"[{t0}, {t1}] straddles enclosing "
                    f"{stack[-1][2]!r} ending at {stack[-1][1]}")
            stack.append((t0, t1, ev["name"]))
    return cats, 0


def check_metrics(doc, required):
    metrics = doc.get("metrics")
    if metrics is None:
        if required:
            return fail("no top-level 'metrics' array")
        return 0
    if not isinstance(metrics, list):
        return fail("'metrics' is not an array")
    for i, m in enumerate(metrics):
        if "pid" not in m:
            return fail(f"metrics[{i}] lacks 'pid'")
        snap = m.get("snapshot")
        if snap is None:
            continue  # a run can end before any section closed
        for field in ("nworkers", "counters", "domains"):
            if field not in snap:
                return fail(f"metrics[{i}].snapshot lacks {field!r}")
        if not isinstance(snap["counters"], dict):
            return fail(f"metrics[{i}].snapshot.counters is not an object")
        for name, val in snap["counters"].items():
            if not isinstance(val, int):
                return fail(f"metrics[{i}] counter {name!r} is not an "
                            "integer")
        for j, d in enumerate(snap["domains"]):
            for field in ("rank", "ready", "failed", "occupied"):
                if field not in d:
                    return fail(f"metrics[{i}].snapshot.domains[{j}] "
                                f"lacks {field!r}")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace_file", help="XK_TRACE output to validate")
    ap.add_argument("--require-cats", default=None,
                    help="comma list of categories that must each appear "
                         "at least once (e.g. task,steal,ready)")
    ap.add_argument("--require-metrics", action="store_true",
                    help="fail when the top-level 'metrics' array is "
                         "absent (it is always validated when present)")
    ap.add_argument("--epsilon", type=float, default=0.002,
                    help="slack in microseconds for span-edge comparisons "
                         "(default 0.002 = 2ns, the writer's precision)")
    args = ap.parse_args()

    try:
        with open(args.trace_file) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.trace_file}: {exc}",
              file=sys.stderr)
        return 2
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("not a Chrome trace object (no 'traceEvents' key)")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail("'traceEvents' is not an array")

    cats, rc = check_events(events, args.epsilon)
    if rc:
        return rc
    if args.require_cats:
        missing = [c for c in args.require_cats.split(",")
                   if c and c not in cats]
        if missing:
            return fail(f"required categories missing: {missing} "
                        f"(present: {sorted(cats)})")
    rc = check_metrics(doc, args.require_metrics)
    if rc:
        return rc

    n_spans = sum(1 for e in events if e.get("ph") == "X")
    n_inst = sum(1 for e in events if e.get("ph") == "i")
    print(f"{args.trace_file}: ok — {n_spans} spans, {n_inst} instants, "
          f"categories {sorted(cats)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
