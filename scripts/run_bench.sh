#!/usr/bin/env bash
# Runs the figure/ablation benchmarks and writes one schema-stable
# BENCH_<benchmark>.json per binary (schema v1, documented in
# bench/common.hpp): benchmark id + per-series {name, nworkers, reps,
# median_s, p95_s, p99_s, min_s, mean_s, throughput}.
#
# Usage:
#   scripts/run_bench.sh [--smoke] [--build-dir DIR] [--out-dir DIR] [name...]
#
#   --smoke      tiny problem sizes, 2 cores, 2 reps: the CI bit-rot gate,
#                finishes in well under a minute.
#   --build-dir  where the bench binaries live (default: build).
#   --out-dir    where BENCH_*.json land (default: repo root).
#
# Human-readable stdout (the counter tables) is captured as
# BENCH_<name>.log under <build-dir>/bench-logs — scratch output next to
# the binaries, never in the repo root (only the .json trajectory files
# are tracked).
#   name...      subset of benchmarks to run (default: all built ones).
#
# The google-benchmark binary (micro_spawn) emits its native JSON, which
# scripts/gbench_to_json.py converts to the same schema.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build"
out_dir="$repo_root"
smoke=0
selected=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1; shift ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out-dir) out_dir="$2"; shift 2 ;;
    -h|--help) sed -n '2,17p' "$0"; exit 0 ;;
    *) selected+=("$1"); shift ;;
  esac
done

bench_dir="$build_dir/bench"
if [[ ! -d "$bench_dir" ]]; then
  echo "error: $bench_dir not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
mkdir -p "$out_dir"
log_dir="$build_dir/bench-logs"
mkdir -p "$log_dir"

table_benches=(fig1_fib fig2_cholesky_dense fig3_foreach fig6_epx_loops
               fig7_skyline fig8_epx_overall ablation_adaptive ablation_steal
               micro_steal micro_locality micro_service)

if [[ $smoke -eq 1 ]]; then
  # Tiny instances: prove the binaries run and the JSON contract holds.
  export XKREPRO_CORES="1,2"
  export XKREPRO_REPS=2
  export XKREPRO_FIB_N=18
  export XKREPRO_TIMEOUT=5
  export XKREPRO_CHOL_MAX=256
  export XKREPRO_NB_FINE=32
  export XKREPRO_NB_COARSE=64
  export XKREPRO_LOOP_SCALE=1
  export XKREPRO_SKY_N=1024
  export XKREPRO_SKY_BS=32
  export XKREPRO_EPX_SCALE=1
  export XKREPRO_EPX_STEPS=3
  export XKREPRO_ABL_N=16384
  export XKREPRO_ABL_CORES=2
  export XKREPRO_STEAL_FIB_N=16
  export XKREPRO_STEAL_ROWS=8
  export XKREPRO_STEAL_STEPS=8
  export XKREPRO_STEAL_WORK=50
  export XKREPRO_LOC_N=65536
  export XKREPRO_LOC_PASSES=2
  export XKREPRO_SVC_JOBS=500
  export XKREPRO_SVC_RATE=5000
  export XKREPRO_SVC_WORK=500
  gbench_flags=(--benchmark_repetitions=2 --benchmark_min_time=0.01)
else
  gbench_flags=(--benchmark_repetitions=5)
fi

want() {
  [[ ${#selected[@]} -eq 0 ]] && return 0
  local n
  for n in "${selected[@]}"; do [[ "$n" == "$1" ]] && return 0; done
  return 1
}

emitted=()

for name in "${table_benches[@]}"; do
  want "$name" || continue
  bin="$bench_dir/$name"
  if [[ ! -x "$bin" ]]; then
    echo "-- skipping $name (not built)" >&2
    continue
  fi
  out="$out_dir/BENCH_${name}.json"
  echo "-- running $name -> $out"
  XKREPRO_JSON="$out" "$bin" > "$log_dir/BENCH_${name}.log"
  emitted+=("$out")
done

if want micro_spawn; then
  bin="$bench_dir/micro_spawn"
  if [[ -x "$bin" ]]; then
    out="$out_dir/BENCH_micro_spawn.json"
    raw="$log_dir/BENCH_micro_spawn.gbench.json"
    echo "-- running micro_spawn -> $out"
    "$bin" "${gbench_flags[@]}" \
      --benchmark_out="$raw" --benchmark_out_format=json \
      > "$log_dir/BENCH_micro_spawn.log"
    python3 "$repo_root/scripts/gbench_to_json.py" "$raw" "$out"
    rm -f "$raw"
    emitted+=("$out")
  else
    echo "-- skipping micro_spawn (not built; needs google-benchmark)" >&2
  fi
fi

if [[ ${#emitted[@]} -eq 0 ]]; then
  echo "error: nothing ran" >&2
  exit 1
fi

# Validate every emitted file against the schema contract.
fail=0
for f in "${emitted[@]}"; do
  if python3 - "$f" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    doc = json.load(fh)
assert doc["schema_version"] == 1, "schema_version"
assert isinstance(doc["benchmark"], str) and doc["benchmark"], "benchmark"
assert doc["results"], "empty results"
for r in doc["results"]:
    for key in ("name", "nworkers", "reps", "median_s", "p95_s", "p99_s",
                "min_s", "mean_s", "throughput"):
        assert key in r, f"missing {key}"
    assert r["median_s"] >= 0 and r["p95_s"] >= r["median_s"] * 0.999
EOF
  then
    echo "-- ok: $f"
  else
    echo "-- INVALID: $f" >&2
    fail=1
  fi
done

exit $fail
