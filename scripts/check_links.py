#!/usr/bin/env python3
"""Fails on intra-repo markdown links whose target does not exist.

Scans every *.md in the repository (skipping .git and build directories),
extracts inline links and images `[text](target)` plus reference
definitions `[id]: target`, and checks that every target resolving to a
path *inside* the repo exists. Anchor fragments are validated too: a
`#section` suffix (in-page or on a .md target) must match a heading slug
of the destination file, using GitHub's slugging rules (lowercase, drop
punctuation, spaces to hyphens, `-1`/`-2`... suffixes for duplicates).
Skipped on purpose:

  * external URLs (anything with a scheme) and mailto:;
  * targets that resolve outside the repo root — those are GitHub
    web-relative (e.g. the README CI badge's ../../actions/...), not
    files this tree can validate;
  * fragments on non-markdown targets (line anchors etc. — not headings).

Exit status 0 when every checked link resolves, 1 otherwise. This is the
CI docs gate (see .github/workflows/ci.yml).
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)>\s]+)>?[^)]*\)")
REF_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s*(\S+)", re.M)
FENCED_CODE = re.compile(r"^```.*?^```", re.M | re.S)
HEADING = re.compile(r"^\s{0,3}(#{1,6})\s+(.*?)\s*#*\s*$", re.M)
INLINE_MD = re.compile(r"`([^`]*)`|\[([^\]]*)\]\([^)]*\)|[*_]")
SKIP_DIRS = {".git", ".ccache", "node_modules"}

_slug_cache = {}


def github_slug(text, seen):
    """One heading -> its GitHub anchor slug, deduped against `seen`."""
    # Strip inline markdown (code spans, link syntax, emphasis markers)
    # before slugging — GitHub slugs the rendered text.
    text = INLINE_MD.sub(lambda m: m.group(1) or m.group(2) or "", text)
    slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    if slug not in seen:
        seen[slug] = 0
        return slug
    seen[slug] += 1
    return f"{slug}-{seen[slug]}"


def anchors_of(path):
    """The set of valid heading anchors of a markdown file (cached)."""
    if path in _slug_cache:
        return _slug_cache[path]
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError:
        _slug_cache[path] = set()
        return _slug_cache[path]
    text = FENCED_CODE.sub("", text)  # a `# comment` in code is not a heading
    seen = {}
    anchors = {github_slug(m.group(2), seen) for m in HEADING.finditer(text)}
    _slug_cache[path] = anchors
    return anchors


def broken_links(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # Code blocks routinely contain [x](y)-shaped noise; don't lint them.
    text = FENCED_CODE.sub("", text)
    broken = []
    for target in INLINE_LINK.findall(text) + REF_DEF.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = path if not file_part else os.path.normpath(
            os.path.join(os.path.dirname(path), file_part))
        if not (resolved == ROOT or resolved.startswith(ROOT + os.sep)):
            continue  # GitHub web-relative: outside the tree
        if not os.path.exists(resolved):
            broken.append(target)
            continue
        # Fragment validation: only markdown heading anchors are checkable.
        if fragment and resolved.endswith(".md"):
            if fragment.lower() not in anchors_of(resolved):
                broken.append(f"{target} (no such anchor)")
    return broken


def main():
    nfiles = 0
    failures = []
    for dirpath, dirnames, filenames in os.walk(ROOT):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        )
        for name in sorted(filenames):
            if not name.endswith(".md"):
                continue
            nfiles += 1
            path = os.path.join(dirpath, name)
            for target in broken_links(path):
                failures.append((os.path.relpath(path, ROOT), target))
    for path, target in failures:
        print(f"{path}: broken link -> {target}")
    status = "FAIL" if failures else "ok"
    print(f"checked {nfiles} markdown files: {status}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
