#!/usr/bin/env python3
"""Fails on intra-repo markdown links whose target does not exist.

Scans every *.md in the repository (skipping .git and build directories),
extracts inline links and images `[text](target)` plus reference
definitions `[id]: target`, and checks that every target resolving to a
path *inside* the repo exists. Skipped on purpose:

  * external URLs (anything with a scheme) and mailto:;
  * pure in-page anchors (#section);
  * targets that resolve outside the repo root — those are GitHub
    web-relative (e.g. the README CI badge's ../../actions/...), not
    files this tree can validate.

Exit status 0 when every checked link resolves, 1 otherwise. This is the
CI docs gate (see .github/workflows/ci.yml).
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)>\s]+)>?[^)]*\)")
REF_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s*(\S+)", re.M)
FENCED_CODE = re.compile(r"^```.*?^```", re.M | re.S)
SKIP_DIRS = {".git", ".ccache", "node_modules"}


def md_files():
    for dirpath, dirnames, filenames in os.walk(ROOT):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        )
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def broken_links(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # Code blocks routinely contain [x](y)-shaped noise; don't lint them.
    text = FENCED_CODE.sub("", text)
    broken = []
    for target in INLINE_LINK.findall(text) + REF_DEF.findall(text):
        if "://" in target or target.startswith(("mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target))
        if not (resolved == ROOT or resolved.startswith(ROOT + os.sep)):
            continue  # GitHub web-relative: outside the tree
        if not os.path.exists(resolved):
            broken.append(target)
    return broken


def main():
    nfiles = 0
    failures = []
    for path in md_files():
        nfiles += 1
        for target in broken_links(path):
            failures.append((os.path.relpath(path, ROOT), target))
    for path, target in failures:
        print(f"{path}: broken link -> {target}")
    status = "FAIL" if failures else "ok"
    print(f"checked {nfiles} markdown files: {status}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
