#!/usr/bin/env python3
"""Converts google-benchmark JSON output to the BENCH_*.json schema (v1).

Usage: gbench_to_json.py <gbench.json> <out.json>

Groups per-repetition entries by run_name and reports median/p95/p99/min/mean
of real_time (converted to seconds) plus items_per_second as throughput —
the same fields bench/common.hpp's JsonReport writes, so the perf
trajectory treats table benches and google-benchmark benches uniformly.
"""
import json
import math
import sys

TIME_UNIT_TO_S = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def quantile(sorted_vals, q):
    """Nearest-rank quantile of a sorted, non-empty list."""
    rank = math.ceil(q * len(sorted_vals))
    return sorted_vals[max(rank, 1) - 1]


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as fh:
        doc = json.load(fh)

    series = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["run_name"]
        scale = TIME_UNIT_TO_S[b.get("time_unit", "ns")]
        entry = series.setdefault(name, {"times": [], "items_per_s": [],
                                         "nworkers": 1})
        entry["times"].append(b["real_time"] * scale)
        # Each benchmark reports its pinned worker count as a user counter.
        if "nworkers" in b:
            entry["nworkers"] = int(b["nworkers"])
        if "items_per_second" in b:
            entry["items_per_s"].append(b["items_per_second"])

    results = []
    for name, entry in series.items():
        times = sorted(entry["times"])
        median = quantile(times, 0.5)
        if entry["items_per_s"]:
            throughput = quantile(sorted(entry["items_per_s"]), 0.5)
        else:
            throughput = 1.0 / median if median > 0 else 0.0
        results.append({
            "name": name,
            "nworkers": entry["nworkers"],
            "reps": len(times),
            "median_s": median,
            "p95_s": quantile(times, 0.95),
            "p99_s": quantile(times, 0.99),
            "min_s": times[0],
            "mean_s": sum(times) / len(times),
            "throughput": throughput,
        })

    out = {"schema_version": 1, "benchmark": "micro_spawn",
           "results": results}
    with open(sys.argv[2], "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")


if __name__ == "__main__":
    main()
